// Natarajan-Mittal BST specifics: the publication-point pattern (flag,
// tag, excise), sentinel handling at the empty/singleton boundary, helping
// between concurrent deleters, and read evidence across pending deletes.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ds/natarajan_bst.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::TxManager;
using BST = medley::ds::NatarajanBST<std::uint64_t, std::uint64_t>;

TEST(Bst, EmptyTreeBehaviour) {
  TxManager mgr;
  BST t(&mgr);
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.remove(1).has_value());
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_TRUE(t.invariants_hold_slow());
}

TEST(Bst, SingletonInsertRemoveCycle) {
  // Exercises the sentinel boundary: the last real leaf's parent collapses
  // back to the S sentinel's child on every removal.
  TxManager mgr;
  BST t(&mgr);
  for (int round = 0; round < 50; round++) {
    ASSERT_TRUE(t.insert(42, 1));
    ASSERT_EQ(t.size_slow(), 1u);
    ASSERT_TRUE(t.remove(42).has_value());
    ASSERT_EQ(t.size_slow(), 0u);
    ASSERT_TRUE(t.invariants_hold_slow());
  }
}

TEST(Bst, RemoveLeafWithInternalSibling) {
  // Excision where the surviving subtree is itself internal.
  TxManager mgr;
  BST t(&mgr);
  t.insert(50, 1);
  t.insert(25, 2);
  t.insert(75, 3);
  t.insert(60, 4);
  t.insert(90, 5);
  ASSERT_TRUE(t.remove(25).has_value());  // sibling subtree {50..90}
  EXPECT_TRUE(t.contains(50));
  EXPECT_TRUE(t.contains(60));
  EXPECT_TRUE(t.contains(75));
  EXPECT_TRUE(t.contains(90));
  EXPECT_TRUE(t.invariants_hold_slow());
}

TEST(Bst, DeepPathInsertRemove) {
  TxManager mgr;
  BST t(&mgr);
  // Monotone insertion degenerates the external tree to a deep spine.
  for (std::uint64_t k = 1; k <= 300; k++) ASSERT_TRUE(t.insert(k, k));
  EXPECT_EQ(t.size_slow(), 300u);
  EXPECT_TRUE(t.invariants_hold_slow());
  for (std::uint64_t k = 1; k <= 300; k += 2) {
    ASSERT_TRUE(t.remove(k).has_value());
  }
  EXPECT_EQ(t.size_slow(), 150u);
  for (std::uint64_t k = 2; k <= 300; k += 2) ASSERT_TRUE(t.contains(k));
  EXPECT_TRUE(t.invariants_hold_slow());
}

TEST(Bst, TxDeleteIsInvisibleUntilCommit) {
  // The publication point (flag CAS) must stay speculative: a concurrent
  // reader that resolves our descriptor aborts us rather than observing a
  // half-done delete.
  TxManager mgr;
  BST t(&mgr);
  t.insert(10, 1);
  mgr.txBegin();
  ASSERT_TRUE(t.remove(10).has_value());
  std::atomic<bool> seen{false};
  std::thread([&] { seen = t.contains(10); }).join();
  // The reader either finalized us (abort) or ran before our install; in
  // both cases it saw a consistent state. If it aborted us, txEnd throws.
  bool committed = true;
  try {
    mgr.txEnd();
  } catch (const TransactionAborted&) {
    committed = false;
  }
  if (committed) {
    EXPECT_FALSE(t.contains(10));
  } else {
    EXPECT_TRUE(t.contains(10));
    EXPECT_TRUE(seen.load());  // reader saw the pre-delete state
  }
  EXPECT_TRUE(t.invariants_hold_slow());
}

TEST(Bst, TxComposedDeleteAndInsertDifferentKeys) {
  TxManager mgr;
  BST t(&mgr);
  t.insert(10, 1);
  t.insert(20, 2);
  medley::execute_tx(mgr, [&] {
    ASSERT_TRUE(t.remove(10).has_value());
    ASSERT_TRUE(t.insert(30, 3));
  });
  EXPECT_FALSE(t.contains(10));
  EXPECT_TRUE(t.contains(20));
  EXPECT_TRUE(t.contains(30));
  EXPECT_TRUE(t.invariants_hold_slow());
}

TEST(Bst, ConcurrentDeletersHelpEachOther) {
  // Two threads repeatedly delete/insert adjacent keys whose leaves share
  // parents: forces the helping path in cleanup() (flag seen on the other
  // side).
  TxManager mgr;
  BST t(&mgr);
  std::atomic<bool> stop{false};
  medley::test::run_threads(2, [&](int id) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(id) + 1);
    auto mine = static_cast<std::uint64_t>(id) + 1;  // keys 1 and 2
    for (int i = 0; i < 4000 && !stop.load(); i++) {
      t.insert(mine, mine);
      t.remove(mine);
    }
  });
  EXPECT_TRUE(t.invariants_hold_slow());
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.contains(2));
}

TEST(Bst, ConcurrentMixedChurnStaysCoherent) {
  TxManager mgr;
  BST t(&mgr);
  constexpr std::uint64_t kKeys = 64;
  medley::test::run_threads(6, [&](int id) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(id) * 3 + 2);
    for (int i = 0; i < 2000; i++) {
      auto k = rng.next_bounded(kKeys) + 1;
      switch (rng.next_bounded(3)) {
        case 0: t.insert(k, k * 7); break;
        case 1: t.remove(k); break;
        default: {
          auto v = t.get(k);
          if (v) {
            ASSERT_EQ(*v, k * 7);
          }
          break;
        }
      }
    }
  });
  EXPECT_TRUE(t.invariants_hold_slow());
  auto keys = t.keys_slow();
  for (auto k : keys) ASSERT_TRUE(t.contains(k));
}

TEST(Bst, ReadEvidenceAcrossPendingDeleteAborts) {
  // A transactional read of key A races a committed delete of A: the read
  // transaction must abort at commit rather than return stale "present".
  TxManager mgr;
  BST t(&mgr);
  t.insert(5, 55);
  bool aborted = false;
  try {
    mgr.txBegin();
    ASSERT_TRUE(t.get(5).has_value());
    std::thread([&] { EXPECT_TRUE(t.remove(5).has_value()); }).join();
    mgr.txEnd();
  } catch (const TransactionAborted&) {
    aborted = true;
  }
  EXPECT_TRUE(aborted);
  EXPECT_FALSE(t.contains(5));
}

// ---------------------------------------------------------------------
// Harness-driven oracle checks (tests/harness/).

namespace h = medley::test::harness;

TEST(BstOracle, DeterministicInterleavingMatchesStdMap) {
  TxManager mgr;
  BST b(&mgr);
  h::Recorder rec;
  h::RecordedMap<BST> rm(&b, &rec);
  h::ScheduleDriver d;
  for (int t = 0; t < 3; t++) {
    std::vector<h::ScheduleDriver::Step> steps;
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 31);
    for (int i = 0; i < 60; i++) {
      const auto k = rng.next_bounded(10);
      const auto v = rng.next();
      switch (rng.next_bounded(4)) {
        case 0: steps.push_back([&rm, t, k, v] { rm.insert(t, k, v); }); break;
        case 1: steps.push_back([&rm, t, k] { rm.remove(t, k); }); break;
        case 2: steps.push_back([&rm, t, k] { rm.contains(t, k); }); break;
        default: steps.push_back([&rm, t, k] { rm.get(t, k); }); break;
      }
    }
    d.add_thread(std::move(steps));
  }
  d.run(d.shuffled(7));
  EXPECT_TRUE(h::check_sequential_map(rec.history()));
  EXPECT_TRUE(b.invariants_hold_slow());
}

TEST(BstOracle, ConcurrentHistorySatisfiesSetInvariants) {
  TxManager mgr;
  BST b(&mgr);
  std::map<std::uint64_t, std::uint64_t> initial;
  for (std::uint64_t k = 1; k <= 15; k += 3) {
    b.insert(k, k + 9000);
    initial[k] = k + 9000;
  }
  h::Recorder rec;
  h::RecordedMap<BST> rm(&b, &rec);
  h::run_seeded(6, 44, [&](int t, medley::util::Xoshiro256& rng) {
    for (int i = 0; i < 1200; i++) {
      const auto k = rng.next_bounded(32);
      const auto v = (static_cast<std::uint64_t>(t) << 32) |
                     static_cast<std::uint64_t>(i);
      switch (rng.next_bounded(3)) {
        case 0: rm.insert(t, k, v); break;
        case 1: rm.remove(t, k); break;
        default: rm.get(t, k); break;
      }
    }
  });
  EXPECT_TRUE(
      h::check_set_history(rec.history(), initial, h::observed_state(b)));
  EXPECT_TRUE(b.invariants_hold_slow());
}

// Quickstart: the paper's running example (Fig. 3) — atomically move
// funds between accounts living in two different lock-free hash tables.
//
//   $ ./examples/quickstart
//
// Demonstrates: TxManager lifecycle, transactional composition of two
// structures, explicit business-rule aborts, and transaction execution
// through TxExecutor (the default policy retries conflicts and stops on a
// user abort — no hand-rolled loop, no exception plumbing).

#include <cstdio>

#include "core/medley.hpp"
#include "ds/michael_hashtable.hpp"

using medley::TxExecutor;
using medley::TxManager;
using Table = medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>;

namespace {

/// Transfer `amount` from account a1 in ht1 to account a2 in ht2,
/// atomically. Returns false if funds are insufficient.
bool transfer(TxExecutor& exec, TxManager& mgr, Table& ht1, Table& ht2,
              std::uint64_t a1, std::uint64_t a2, std::uint64_t amount) {
  auto r = exec.execute(mgr, [&] {
    auto v1 = ht1.get(a1);
    auto v2 = ht2.get(a2);
    if (!v1 || *v1 < amount) {
      mgr.txAbort();  // business rule: no overdraft (terminal by policy)
    }
    ht1.put(a1, *v1 - amount);
    ht2.put(a2, amount + v2.value_or(0));
  });
  return r.committed();  // !committed => r.terminal holds the reason
}

}  // namespace

int main() {
  TxManager mgr;
  TxExecutor exec;  // customize with TxExecutor{TxPolicy{...}}
  Table checking(&mgr, 1024);
  Table savings(&mgr, 1024);

  checking.insert(/*account=*/1, /*balance=*/100);
  savings.insert(/*account=*/2, /*balance=*/5);

  std::printf("before: checking[1]=%lu savings[2]=%lu\n",
              *checking.get(1), *savings.get(2));

  if (transfer(exec, mgr, checking, savings, 1, 2, 30)) {
    std::printf("transferred 30: checking[1]=%lu savings[2]=%lu\n",
                *checking.get(1), *savings.get(2));
  }

  if (!transfer(exec, mgr, checking, savings, 1, 2, 1000)) {
    std::printf("transfer of 1000 correctly refused (insufficient funds)\n");
  }

  auto stats = mgr.stats();
  std::printf("transactions: %lu committed, %lu aborted\n", stats.commits,
              stats.aborts);
  return 0;
}

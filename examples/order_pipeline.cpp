// Order pipeline: the composition pattern earlier transactional
// transforms cannot express. A FIFO queue of orders is consumed
// atomically with inventory updates and a fulfillment log:
//
//     tx { order = queue.dequeue();
//          stock = inventory.get(order.item); if stock == 0 -> abort
//          inventory.put(order.item, stock - 1);
//          fulfilled.insert(order.id, order.item); }
//
// Transactional boosting has no inverse for dequeue; LFTT/DTT have no
// critical node for a queue. NBTC composes it because both queue
// operations have immediately identifiable linearization points (paper
// Secs. 1-2).
//
//   $ ./examples/order_pipeline [workers]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/medley.hpp"
#include "ds/michael_hashtable.hpp"
#include "ds/ms_queue.hpp"
#include "util/rng.hpp"

using medley::TxManager;

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 3;
  constexpr std::uint64_t kItems = 16;
  constexpr std::uint64_t kStockPerItem = 50;
  constexpr std::uint64_t kOrders = 1200;  // 1200 > 16*50: some must fail

  TxManager mgr;
  medley::ds::MSQueue<std::uint64_t> orders(&mgr);  // packed {id, item}
  medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t> inventory(&mgr,
                                                                       64);
  medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t> fulfilled(
      &mgr, 4096);

  for (std::uint64_t i = 0; i < kItems; i++) {
    inventory.insert(i, kStockPerItem);
  }
  medley::util::Xoshiro256 rng(7);
  for (std::uint64_t id = 1; id <= kOrders; id++) {
    orders.enqueue((id << 16) | rng.next_bounded(kItems));
  }

  std::atomic<std::uint64_t> shipped{0}, rejected{0};
  enum class Outcome { Drained, Rejected, Shipped };
  medley::TxExecutor exec;  // default policy: conflicts retried
  std::vector<std::thread> pool;
  for (int w = 0; w < workers; w++) {
    pool.emplace_back([&] {
      for (;;) {
        auto r = exec.execute(mgr, [&]() -> Outcome {
          auto order = orders.dequeue();
          if (!order) return Outcome::Drained;
          const std::uint64_t id = *order >> 16;
          const std::uint64_t item = *order & 0xffff;
          auto stock = inventory.get(item);
          if (!stock || *stock == 0) {
            // Out of stock: still consume the order, but log nothing.
            // (dequeue + get compose; the order is gone atomically)
            inventory.put(item, 0);
            return Outcome::Rejected;
          }
          inventory.put(item, *stock - 1);
          fulfilled.insert(id, item);
          return Outcome::Shipped;
        });
        if (*r.value == Outcome::Drained) break;
        (*r.value == Outcome::Shipped ? shipped : rejected).fetch_add(1);
      }
    });
  }
  for (auto& t : pool) t.join();

  // Audit: every unit of consumed stock corresponds to one fulfillment.
  std::uint64_t remaining = 0;
  for (std::uint64_t i = 0; i < kItems; i++) {
    remaining += inventory.get(i).value_or(0);
  }
  const std::uint64_t consumed = kItems * kStockPerItem - remaining;
  std::printf("orders: %lu shipped, %lu rejected (out of stock)\n",
              shipped.load(), rejected.load());
  std::printf("stock consumed: %lu, fulfillments logged: %zu\n", consumed,
              fulfilled.size_slow());
  std::printf("queue drained: %s\n", orders.empty() ? "yes" : "no");

  const bool ok = consumed == shipped.load() &&
                  fulfilled.size_slow() == shipped.load() &&
                  shipped.load() + rejected.load() == kOrders;
  std::printf("invariants: %s\n", ok ? "hold" : "VIOLATED");
  return ok ? 0 : 1;
}

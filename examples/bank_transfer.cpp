// Concurrent bank: N threads shuffle money among accounts stored in a
// transactional skiplist, with an auditor thread taking transactional
// snapshots. Strict serializability means every audit sees the exact
// conserved total — no torn transfers — and the final sweep balances.
//
//   $ ./examples/bank_transfer [threads] [transfers-per-thread]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/medley.hpp"
#include "ds/fraser_skiplist.hpp"
#include "util/rng.hpp"

using medley::TxManager;
using Accounts = medley::ds::FraserSkiplist<std::uint64_t, std::uint64_t>;

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int transfers = argc > 2 ? std::atoi(argv[2]) : 20000;
  constexpr std::uint64_t kAccounts = 64;
  constexpr std::uint64_t kInitial = 1000;

  TxManager mgr;
  // Shared executor: exponential backoff between aborted attempts keeps
  // the workers from retry-storming each other on the hot accounts.
  medley::TxExecutor exec{
      medley::TxPolicy::with(std::make_shared<medley::ExpBackoffCM>())};
  Accounts accounts(&mgr);
  for (std::uint64_t a = 1; a <= kAccounts; a++) {
    accounts.insert(a, kInitial);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> audits{0}, bad_audits{0};

  // Auditor: transactional snapshot of every balance; the sum must always
  // equal the initial total.
  std::thread auditor([&] {
    while (!stop.load()) {
      auto r = exec.execute(mgr, [&] {
        std::uint64_t total = 0;
        for (std::uint64_t a = 1; a <= kAccounts; a++) {
          total += accounts.get(a).value_or(0);
        }
        return total;
      });
      audits.fetch_add(1);
      if (*r.value != kAccounts * kInitial) bad_audits.fetch_add(1);
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < transfers; i++) {
        const std::uint64_t from = rng.next_bounded(kAccounts) + 1;
        const std::uint64_t to = rng.next_bounded(kAccounts) + 1;
        const std::uint64_t amount = rng.next_bounded(20) + 1;
        if (from == to) continue;
        exec.execute(mgr, [&] {
          auto vf = accounts.get(from);
          auto vt = accounts.get(to);
          if (!vf || *vf < amount) mgr.txAbort();  // refused: terminal
          accounts.remove(from);
          accounts.insert(from, *vf - amount);
          accounts.remove(to);
          accounts.insert(to, *vt + amount);
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  stop = true;
  auditor.join();

  std::uint64_t total = 0;
  for (std::uint64_t a = 1; a <= kAccounts; a++) {
    total += accounts.get(a).value_or(0);
  }
  auto stats = mgr.stats();
  std::printf("final total: %lu (expected %lu)\n", total,
              kAccounts * kInitial);
  std::printf("audits: %lu clean, %lu torn\n",
              audits.load() - bad_audits.load(), bad_audits.load());
  std::printf("transactions: %lu committed, %lu aborted "
              "(%lu conflict, %lu validation, %lu user)\n",
              stats.commits, stats.aborts, stats.conflict_aborts,
              stats.validation_aborts, stats.user_aborts);
  return total == kAccounts * kInitial && bad_audits.load() == 0 ? 0 : 1;
}

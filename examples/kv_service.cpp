// MedleyStore in a few lines: a typed KV service whose every operation is
// one Medley transaction across a hash primary, an ordered secondary
// index, and a change feed — point ops, atomic batches, consistent range
// scans, and a replication tap, with zero locks.
//
// Scaled out with ShardedMedleyStore: four shards, each with its own
// TxManager + indexes + feed under one shared TxDomain. Single-key ops
// run entirely inside their shard; batches and scans that span shards are
// still ONE atomic transaction (one descriptor, one commit CAS).
//
//   $ ./examples/kv_service

#include <cstdio>

#include "store/store.hpp"

int main() {
  medley::store::ShardedMedleyStore<std::uint64_t, std::uint64_t> kv(4);

  kv.put(7, 700);                                     // single-shard fast path
  kv.multi_put({{1, 100}, {2, 200}, {3, 300}});       // all-or-nothing, spans shards
  kv.read_modify_write(7, [](const std::optional<std::uint64_t>& v) {
    return std::optional<std::uint64_t>(v.value_or(0) + 1);
  });
  kv.read_modify_write_many(                          // atomic cross-shard RMW
      {1, 3}, [](std::uint64_t, const std::optional<std::uint64_t>& v) {
        return std::optional<std::uint64_t>(v.value_or(0) + 9);
      });
  kv.del(2);

  // Arbitrary composition across shards: one transaction, one commit.
  kv.transact([&] {
    auto a = kv.get(1).value_or(0);
    kv.put(5, a);
  });

  for (auto [k, v] : kv.range(0, 10)) {               // merged atomic snapshot
    std::printf("range: %lu -> %lu (shard %zu)\n", k, v, kv.shard_of(k));
  }
  for (const auto& e : kv.poll_feed(16)) {            // merged committed mutations
    std::printf("feed:  %s %lu seq=%lu\n",
                e.op == medley::store::FeedOp::Put ? "put" : "del", e.key,
                e.seq);
  }
  auto st = kv.stats();
  std::printf("txs: %lu committed, %lu aborted across %zu shards\n",
              st.commits, st.aborts(), kv.shard_count());
  return 0;
}

// MedleyStore in 15 lines: a typed KV service whose every operation is
// one Medley transaction across a hash primary, an ordered secondary
// index, and a change feed — point ops, atomic batches, consistent range
// scans, and a replication tap, with zero locks.
//
//   $ ./examples/kv_service

#include <cstdio>

#include "store/store.hpp"

int main() {
  medley::TxManager mgr;
  medley::store::MedleyStore<std::uint64_t, std::uint64_t> kv(&mgr);

  kv.put(7, 700);
  kv.multi_put({{1, 100}, {2, 200}, {3, 300}});       // all-or-nothing
  kv.read_modify_write(7, [](const std::optional<std::uint64_t>& v) {
    return std::optional<std::uint64_t>(v.value_or(0) + 1);
  });
  kv.del(2);

  for (auto [k, v] : kv.range(0, 10)) {               // atomic ordered snapshot
    std::printf("range: %lu -> %lu\n", k, v);
  }
  for (const auto& e : kv.poll_feed(16)) {            // committed mutations, in order
    std::printf("feed:  %s %lu\n",
                e.op == medley::store::FeedOp::Put ? "put" : "del", e.key);
  }
  auto st = kv.stats();
  std::printf("txs: %lu committed, %lu aborted\n", st.commits, st.aborts());
  return 0;
}

// A complete KV service over the wire: a sharded MedleyStore served by
// the epoll front-end (src/net), driven by real clients over TCP.
//
// The pipeline this demonstrates end to end:
//
//   client send_batch ──TCP──▶ worker reads one WAVE of frames
//                              ├─ PUT/DEL  → async publish into the
//                              │             flat combiner (no wait)
//                              ├─ GET/...  → barrier: harvest, then run
//                              └─ harvest  → ONE combined transaction
//                                            commits the whole wave
//                              one writev acks the wave ──▶ client
//
// so a batch of B pipelined mutations costs one syscall each way and one
// commit CAS total, instead of B round trips and B transactions. Every
// ack the client reads is a commit-proof: the server encodes a response
// only after the mutation's transaction committed.
//
//   $ ./examples/kv_service

#include <cstdio>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "store/sharded_store.hpp"

using medley::store::ShardedMedleyStore;
using medley::store::StoreConfig;
namespace net = medley::net;

int main() {
  // The store: two shards, flat-combining group commit on, metrics on
  // (the net layer registers its families into the same registry, so one
  // METRICS scrape shows the whole request path).
  StoreConfig cfg;
  cfg.combining.enabled = true;
  cfg.metrics = true;
  cfg.metrics_registry = std::make_shared<medley::obs::MetricsRegistry>();
  ShardedMedleyStore<std::uint64_t, std::uint64_t> kv(2, cfg);

  // The server: epoll workers feeding the combiner, ephemeral port.
  net::StoreAdapter<decltype(kv)> adapter(&kv);
  net::NetConfig ncfg;
  ncfg.workers = 2;
  ncfg.registry = cfg.metrics_registry;
  net::Server server(&adapter, ncfg);
  server.start();
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // A pipelined writer: 64 PUTs leave in ONE syscall, arrive as one wave,
  // and commit as combined batches — then a GET barrier reads its writes.
  std::thread writer([&] {
    net::Client c("127.0.0.1", server.port());
    std::vector<net::Request> batch;
    for (std::uint64_t k = 0; k < 64; k++) {
      batch.push_back(c.make(net::Verb::kPut, k, k * 10));
    }
    batch.push_back(c.make(net::Verb::kGet, 42));
    auto rs = c.send_batch(batch);
    std::printf("writer: %zu acks, get(42) -> %lu\n", rs.size(),
                static_cast<unsigned long>(rs.back().val.value_or(0)));
  });
  writer.join();

  // A synchronous client: point ops, an atomic batch, ordered reads.
  net::Client c("127.0.0.1", server.port());
  c.put(1000, 1);
  c.rmw_add(1000, 41);  // 1 + 41, atomically
  c.multi_put({{2000, 2}, {2001, 3}});
  c.del(3);
  std::printf("sync:   get(1000) -> %lu, del(3) removed %lu\n",
              static_cast<unsigned long>(c.get(1000).value_or(0)),
              static_cast<unsigned long>(c.get(3).has_value()));
  for (auto [k, v] : c.scan(2000, 2)) {
    std::printf("scan:   %lu -> %lu\n", static_cast<unsigned long>(k),
                static_cast<unsigned long>(v));
  }

  // Admin verbs: the fixed stats block and a full Prometheus scrape.
  auto st = c.stats();
  std::printf(
      "stats:  %lu commits, %lu aborts, %lu keys, %lu combined ops in "
      "%lu batches\n",
      static_cast<unsigned long>(st.commits),
      static_cast<unsigned long>(st.aborts),
      static_cast<unsigned long>(st.keys),
      static_cast<unsigned long>(st.combined_ops),
      static_cast<unsigned long>(st.combined_batches));
  const std::string metrics = c.metrics();
  std::printf("scrape: %zu bytes of Prometheus exposition (%s)\n",
              metrics.size(),
              metrics.find("medley_net_requests_total") != std::string::npos
                  ? "net families present"
                  : "net families MISSING");

  // Graceful shutdown: in-flight waves are harvested (draining the
  // combiner) and flushed before stop() returns; only then may the store
  // be torn down.
  server.stop();
  std::printf("server drained and stopped; %lu requests served\n",
              static_cast<unsigned long>(server.requests()));
  return 0;
}

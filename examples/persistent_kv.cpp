// Persistent key-value store on txMontage: ACID multi-key transactions
// with buffered durability, a simulated crash, and recovery.
//
//   $ ./examples/persistent_kv [store-file]
//
// Phase 1 writes batches transactionally and syncs; then writes one more
// batch WITHOUT syncing and "crashes" (drops all DRAM state). Phase 2
// reopens the file, recovers, and shows that exactly the synced prefix
// survived — each transaction whole or not at all.

#include <cstdio>
#include <string>

#include "montage/txmontage.hpp"

using medley::TxManager;
using medley::montage::EpochSys;
using medley::montage::PRegion;
using medley::montage::TxMontageHashTable;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/medley_persistent_kv.img";
  std::remove(path.c_str());

  constexpr std::uint64_t kBatch = 10;

  {  // ---- phase 1: write, sync, write more, crash --------------------
    PRegion region(path, 1u << 14);
    TxManager mgr;
    EpochSys es(&region);
    es.attach(&mgr);
    TxMontageHashTable kv(&mgr, &es, /*sid=*/1, /*buckets=*/256);

    for (std::uint64_t batch = 0; batch < 3; batch++) {
      medley::execute_tx(mgr, [&] {
        for (std::uint64_t i = 0; i < kBatch; i++) {
          kv.insert(batch * kBatch + i, batch * 1000 + i);
        }
      });
    }
    es.sync();
    std::printf("phase 1: wrote 3 synced batches (%lu keys)\n", 3 * kBatch);

    medley::execute_tx(mgr, [&] {
      for (std::uint64_t i = 0; i < kBatch; i++) {
        kv.insert(900 + i, 9999);
      }
    });
    std::printf("phase 1: wrote 1 more batch, NOT synced; crashing now\n");
    // Scope exit discards every DRAM structure: the "crash".
  }

  {  // ---- phase 2: recover ---------------------------------------------
    PRegion region(path, 1u << 14);
    TxManager mgr;
    EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    TxMontageHashTable kv(&mgr, &es, 1, 256);
    kv.recover_from(recovered);

    std::size_t synced = 0, unsynced = 0;
    for (std::uint64_t k = 0; k < 3 * kBatch; k++) {
      if (kv.contains(k)) synced++;
    }
    for (std::uint64_t i = 0; i < kBatch; i++) {
      if (kv.contains(900 + i)) unsynced++;
    }
    std::printf("phase 2: recovered %zu/%lu synced keys, %zu/%lu unsynced\n",
                synced, 3 * kBatch, unsynced, kBatch);
    std::printf("durability boundary respected: %s\n",
                (synced == 3 * kBatch && unsynced == 0) ? "yes" : "NO");

    // The store keeps working after recovery.
    medley::execute_tx(mgr, [&] { kv.insert(12345, 678); });
    es.sync();
    std::printf("post-recovery write ok: kv[12345]=%lu\n", *kv.get(12345));

    std::remove(path.c_str());
    return (synced == 3 * kBatch && unsynced == 0) ? 0 : 1;
  }
}

#!/usr/bin/env python3
"""Docs-consistency check: every relative markdown link must resolve.

Usage: tools/check_links.py FILE.md [FILE.md ...]

Scans each given markdown file for inline links/images `[text](target)`
and reference definitions `[label]: target`, and fails (exit 1) if a
relative target does not exist on disk, so a renamed header file or a
deleted doc can't silently rot README/ARCHITECTURE/PAPER/ROADMAP.

Deliberately dependency-free (stdlib only — CI just needs python3) and
conservative:
  - external links (http/https/mailto) are skipped, not fetched;
  - pure-anchor links (#section) are skipped — anchors move too easily
    for an offline checker to be authoritative about them;
  - a target's own trailing #anchor / ?query is stripped before the
    existence check;
  - fenced code blocks are ignored (code samples legitimately contain
    `[i](j)`-shaped text).
"""

import os
import re
import sys

INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
FENCE = re.compile(r"^\s*(```|~~~)")


def targets(path):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in INLINE.finditer(line):
                yield lineno, m.group(1)
            m = REFDEF.match(line)
            if m:
                yield lineno, m.group(1)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2])
        return 2
    bad = 0
    for md in argv[1:]:
        if not os.path.exists(md):
            print(f"MISSING FILE {md}")
            bad += 1
            continue
        base = os.path.dirname(os.path.abspath(md))
        for lineno, t in targets(md):
            if t.startswith(("http://", "https://", "mailto:")):
                continue
            if t.startswith("#"):
                continue
            local = t.split("#", 1)[0].split("?", 1)[0]
            if not local:
                continue
            if not os.path.exists(os.path.join(base, local)):
                print(f"{md}:{lineno}: broken link -> {t}")
                bad += 1
    if bad:
        print(f"{bad} broken link(s)")
        return 1
    print(f"ok: {len(argv) - 1} file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate a Prometheus text exposition produced by dump_metrics().

Stdlib-only (CI runs it bare). Checks, in order:

  1. line grammar: every line is a comment (# HELP / # TYPE), blank, or a
     sample `name[{labels}] value` with a parseable float value;
  2. every sample belongs to a family with a preceding # TYPE line
     (summary samples may use the family's _sum/_count suffixes);
  3. the store's required families are all present;
  4. every summary family exposes quantile-labeled samples.

Usage: check_metrics.py [exposition.prom]   (reads stdin when no file)
Exit status 0 when valid; 1 with one message per violation otherwise.
"""

import re
import sys

REQUIRED_FAMILIES = [
    "medley_store_ops_total",
    "medley_store_op_latency_ns",
    "medley_store_aborts_total",
    "medley_store_keys",
    "medley_store_feed_depth",
]

# When the scrape came through the network layer (any medley_net_* family
# present), the full net family set must be there too — a partial set
# means Server::init_metrics() registration drifted from the contract.
NET_FAMILIES = [
    "medley_net_connections",
    "medley_net_requests_total",
    "medley_net_errors_total",
    "medley_net_batch_size",
]

NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
HELP_RE = re.compile(rf"^# HELP ({NAME_RE}) .*$")
TYPE_RE = re.compile(rf"^# TYPE ({NAME_RE}) (counter|gauge|summary|histogram|untyped)$")
SAMPLE_RE = re.compile(rf"^({NAME_RE})(\{{(.*)\}})? (\S+)$")
LABEL_RE = re.compile(rf'({NAME_RE})="((?:[^"\\]|\\.)*)"')


def parse_labels(raw):
    """Return the label dict, or None if `raw` is not a valid label body."""
    labels = {}
    rest = raw
    while rest:
        m = LABEL_RE.match(rest)
        if not m:
            return None
        labels[m.group(1)] = m.group(2)
        rest = rest[m.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            return None
    return labels


def base_family(name, types):
    """Map a sample name to its family (summary _sum/_count included)."""
    if name in types:
        return name
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def validate(text):
    errors = []
    types = {}  # family -> type
    samples = []  # (family, name, labels, lineno)

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if TYPE_RE.match(line):
                m = TYPE_RE.match(line)
                types[m.group(1)] = m.group(2)
            elif not HELP_RE.match(line):
                errors.append(f"line {lineno}: malformed comment: {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name, label_body, value = m.group(1), m.group(3), m.group(4)
        labels = {}
        if label_body is not None:
            labels = parse_labels(label_body)
            if labels is None:
                errors.append(f"line {lineno}: malformed labels: {line!r}")
                continue
        try:
            float(value)
        except ValueError:
            errors.append(f"line {lineno}: unparseable value {value!r}")
            continue
        family = base_family(name, types)
        if family is None:
            errors.append(f"line {lineno}: sample {name!r} has no # TYPE")
            continue
        samples.append((family, name, labels, lineno))

    required = list(REQUIRED_FAMILIES)
    if any(fam.startswith("medley_net_") for fam in types):
        required += NET_FAMILIES
    for fam in required:
        if fam not in types:
            errors.append(f"required family missing: {fam}")
        elif not any(s[0] == fam for s in samples):
            errors.append(f"required family has no samples: {fam}")

    for fam, ftype in sorted(types.items()):
        if ftype != "summary":
            continue
        quantiled = [
            s for s in samples if s[0] == fam and "quantile" in s[2]
        ]
        plain = [s for s in samples if s[0] == fam]
        if plain and not quantiled:
            errors.append(f"summary family without quantile samples: {fam}")

    return errors


def main(argv):
    if len(argv) > 1:
        with open(argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        print("check_metrics: empty exposition", file=sys.stderr)
        return 1
    errors = validate(text)
    for e in errors:
        print(f"check_metrics: {e}", file=sys.stderr)
    if errors:
        return 1
    n_fam = len(set(l.split()[2] for l in text.splitlines()
                    if l.startswith("# TYPE")))
    print(f"check_metrics: OK ({n_fam} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
